package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/serve/metrics"
	"repro/internal/tensor"
)

// Typed serving errors.
var (
	// ErrQueueFull is returned by Batcher.Do when the bounded request queue
	// is at capacity — the HTTP layer maps it to 429 (backpressure).
	ErrQueueFull = errors.New("serve: request queue is full")
	// ErrClosed is returned for requests that arrive during or after
	// shutdown.
	ErrClosed = errors.New("serve: server is closed")
	// ErrDeadline is returned for requests whose deadline budget cannot be
	// met: either the live queue is predicted to outlast the remaining
	// budget at admission, or the deadline expired while the request was
	// queued. The HTTP layer maps it to 504.
	ErrDeadline = errors.New("serve: request deadline exceeded")
	// ErrModelDegraded is returned while a model's circuit breaker is open:
	// repeated execution failures quarantined it, and only probe traffic is
	// admitted until it recovers. The HTTP layer maps it to 503 with a
	// Retry-After.
	ErrModelDegraded = errors.New("serve: model is degraded")
)

// request is one in-flight inference waiting to be batched.
type request struct {
	ctx   context.Context
	input *tensor.Tensor
	resp  chan response
	enq   time.Time // admission time, for the queue-wait histogram
}

type response struct {
	outs []*tensor.Tensor
	err  error
	// batchID identifies the dispatched micro-batch that carried this
	// request (access-log correlation); 0 when the request never reached a
	// batch (rejected, shed, shutdown).
	batchID uint64
}

// Batcher coalesces concurrent inference requests into micro-batches and
// dispatches them through Session.RunBatch on pooled sessions.
//
// One dispatcher goroutine owns the queue. For each batch it takes the first
// queued request, acquires a session (blocking here — not per request — is
// what creates the coalescing opportunity: while every session is busy,
// requests pile up in the queue), then fills the batch from the queue up to
// MaxBatch, waiting at most MaxLatency for stragglers, and hands the batch
// to a runner goroutine. Admission is bounded by the queue depth: a full
// queue rejects immediately with ErrQueueFull rather than queueing unbounded
// work, and a request whose deadline the live queue cannot meet is refused
// with ErrDeadline rather than admitted to time out.
//
// When a batch holds more than one item and the pool has spare capacity,
// the runner shards it: the batch's inputs are split contiguously across
// the acquired session plus as many TryAcquire'd extra sessions as the pool
// will yield without blocking, each shard runs concurrently, and the
// responses rejoin in input order — batch-level data parallelism, so a
// large coalesced batch is not serialized through a single arena while
// sibling sessions idle.
//
// The batcher is also the panic-isolation boundary of the serving stack: a
// batch (or shard) that fails with *core.ExecPanicError fails only its own
// requests, and only the (possibly arena-corrupted) session that panicked
// is discarded from the pool instead of recycled — a sharded batch's other
// lanes deliver their results and return their sessions as usual.
type Batcher struct {
	model      string // fault-site label and error context
	pool       *SessionPool
	maxBatch   int
	maxLatency time.Duration
	drain      time.Duration
	queue      chan *request

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// draining stops admission while Close lets in-flight work finish;
	// active counts dispatched-but-unfinished batches (the drain signal).
	draining atomic.Bool
	active   atomic.Int64

	// ewmaNanos tracks observed batch execution latency (exponentially
	// weighted), the basis for Retry-After and deadline admission.
	ewmaNanos atomic.Int64

	// onResult, when set, is called once per dispatched batch with the
	// execution failure (nil for success or client-caused aborts) — the
	// registry hangs the model's circuit breaker on it. Set before the
	// batcher receives traffic.
	onResult func(error)

	// metrics, when set, receives batch/queue-wait/discard/panic
	// observations (nil-safe methods; set before traffic, like onResult).
	metrics *metrics.Model

	// nextBatch mints batch IDs (1-based; 0 means "no batch").
	nextBatch atomic.Uint64

	mu             sync.Mutex
	batches        uint64
	items          uint64
	rejected       uint64
	shed           uint64
	panics         uint64
	shardedBatches uint64
	shards         uint64
	maxObserved    int
}

// BatchStats is a snapshot of the batcher's coalescing behaviour.
type BatchStats struct {
	// Batches counts dispatched micro-batches, Items the requests they
	// carried; Items/Batches is the mean observed batch size and
	// MaxObserved the largest single dispatch.
	Batches     uint64 `json:"batches"`
	Items       uint64 `json:"items"`
	MaxObserved int    `json:"max_observed"`
	// Rejected counts requests refused with ErrQueueFull.
	Rejected uint64 `json:"rejected"`
	// Shed counts requests refused or dropped for deadline reasons: budgets
	// the live queue could not meet at admission, and already-expired
	// requests evicted from the queue to make room under pressure.
	Shed uint64 `json:"shed"`
	// Panics counts batches or shards that failed with a recovered execution
	// panic (each also discarded its session from the pool).
	Panics uint64 `json:"panics"`
	// ShardedBatches counts dispatched batches that were split across more
	// than one session; Shards the total lanes those splits used, so
	// Shards/ShardedBatches is the mean fan-out.
	ShardedBatches uint64 `json:"sharded_batches"`
	Shards         uint64 `json:"shards"`
	// EstimatedWaitNS is the current queue-depth × observed-batch-latency
	// wait prediction, the basis for Retry-After.
	EstimatedWaitNS int64 `json:"estimated_wait_ns"`
}

// NewBatcher starts the dispatcher for one model. cfg must already have its
// defaults resolved (Registry.Load does); MaxBatch and QueueDepth are
// clamped to at least 1.
func NewBatcher(model string, pool *SessionPool, cfg Config) *Batcher {
	maxBatch := cfg.MaxBatch
	if maxBatch < 1 {
		maxBatch = 1
	}
	queueDepth := cfg.QueueDepth
	if queueDepth < 1 {
		queueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Batcher{
		model:      model,
		pool:       pool,
		maxBatch:   maxBatch,
		maxLatency: cfg.MaxLatency,
		drain:      cfg.DrainTimeout,
		queue:      make(chan *request, queueDepth),
		baseCtx:    ctx,
		cancel:     cancel,
	}
	b.wg.Add(1)
	go b.dispatch()
	return b
}

// OnBatchDone installs the per-batch completion callback (nil error means
// the batch executed; a non-nil error is an execution failure, client-caused
// aborts excluded). It must be installed before the batcher receives
// traffic.
func (b *Batcher) OnBatchDone(fn func(error)) { b.onResult = fn }

// SetMetrics installs the model's metric set (nil runs unmetered). It must
// be installed before the batcher receives traffic.
func (b *Batcher) SetMetrics(m *metrics.Model) { b.metrics = m }

// QueueDepth reports the number of requests currently sitting in the
// admission queue (the queue-depth gauge).
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// Do submits one input and blocks until its batch completes, the caller's
// ctx is done, or the batcher shuts down. A ctx deadline is the request's
// whole-lifetime budget: admission refuses it outright (ErrDeadline) when
// the live queue is predicted to outlast it.
func (b *Batcher) Do(ctx context.Context, in *tensor.Tensor) ([]*tensor.Tensor, error) {
	outs, _, err := b.DoTraced(ctx, in)
	return outs, err
}

// DoTraced is Do plus the ID of the micro-batch that carried the request (0
// when it never reached one) — the access log's batch_id field.
func (b *Batcher) DoTraced(ctx context.Context, in *tensor.Tensor) ([]*tensor.Tensor, uint64, error) {
	if b.draining.Load() || b.baseCtx.Err() != nil {
		return nil, 0, ErrClosed
	}
	if dl, ok := ctx.Deadline(); ok {
		if wait := b.EstimatedWait(); wait > 0 && time.Until(dl) < wait {
			b.count(func() { b.shed++ })
			return nil, 0, ErrDeadline
		}
	}
	req := &request{ctx: ctx, input: in, resp: make(chan response, 1), enq: time.Now()}
	select {
	case b.queue <- req:
	default:
		if !b.shedExpiredFor(req) {
			b.count(func() { b.rejected++ })
			return nil, 0, ErrQueueFull
		}
	}
	select {
	case r := <-req.resp:
		return r.outs, r.batchID, r.err
	case <-ctx.Done():
		// The batch may still run this input (it only aborts once every
		// member is cancelled); the buffered resp channel lets the runner
		// complete without us.
		return nil, 0, ctx.Err()
	case <-b.baseCtx.Done():
		select {
		case r := <-req.resp:
			return r.outs, r.batchID, r.err
		default:
			return nil, 0, ErrClosed
		}
	}
}

// shedExpiredFor handles admission against a full queue under deadline
// pressure: it pulls the oldest queued request, and if that request's
// deadline (or client) has already expired, answers it ErrDeadline and
// admits req into the freed slot. A still-live pulled request is re-enqueued
// — its position moves to the tail, an ordering perturbation that only
// occurs under overload — and req is rejected.
func (b *Batcher) shedExpiredFor(req *request) bool {
	select {
	case oldest := <-b.queue:
		if oldest.ctx.Err() != nil {
			oldest.resp <- response{err: shedError(oldest.ctx)}
			b.count(func() { b.shed++ })
			select {
			case b.queue <- req:
				return true
			default:
				return false
			}
		}
		// Still live: put it back. The dispatcher drains this queue, so the
		// send completes; baseCtx guards shutdown.
		select {
		case b.queue <- oldest:
		case <-b.baseCtx.Done():
			oldest.resp <- response{err: ErrClosed}
		}
	default:
	}
	return false
}

// shedError translates an expired queued request's ctx state into the error
// its client sees: a deadline expiry is ErrDeadline (504), a client
// disconnect stays a bare ctx error (408).
func shedError(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ctx.Err()
}

// Close stops admission, lets queued requests and in-flight batches drain
// for up to the configured drain timeout, then cancels whatever remains and
// fails still-queued requests with ErrClosed. Idempotent.
func (b *Batcher) Close() {
	b.draining.Store(true)
	if b.drain > 0 {
		deadline := time.Now().Add(b.drain)
		for time.Now().Before(deadline) {
			if len(b.queue) == 0 && b.active.Load() == 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.cancel()
	b.wg.Wait()
	for {
		select {
		case req := <-b.queue:
			req.resp <- response{err: ErrClosed}
		default:
			return
		}
	}
}

// Stats snapshots the coalescing counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatchStats{
		Batches:         b.batches,
		Items:           b.items,
		MaxObserved:     b.maxObserved,
		Rejected:        b.rejected,
		Shed:            b.shed,
		Panics:          b.panics,
		ShardedBatches:  b.shardedBatches,
		Shards:          b.shards,
		EstimatedWaitNS: int64(b.estimatedWaitLocked()),
	}
}

// EstimatedWait predicts how long a newly admitted request would wait:
// the number of batches ahead of it (live queue depth plus its own) times
// the observed batch latency. Zero until a first batch has been measured.
func (b *Batcher) EstimatedWait() time.Duration {
	return b.estimatedWait(len(b.queue))
}

func (b *Batcher) estimatedWaitLocked() time.Duration { return b.estimatedWait(len(b.queue)) }

func (b *Batcher) estimatedWait(depth int) time.Duration {
	ewma := time.Duration(b.ewmaNanos.Load())
	if ewma <= 0 {
		return 0
	}
	batchesAhead := depth/b.maxBatch + 1
	return time.Duration(batchesAhead) * ewma
}

// RetryAfterSeconds derives a Retry-After header value from the live queue
// depth and the observed batch latency, floored at 1 second.
func (b *Batcher) RetryAfterSeconds() int {
	secs := int(math.Ceil(b.EstimatedWait().Seconds()))
	if secs < 1 {
		return 1
	}
	return secs
}

func (b *Batcher) count(fn func()) {
	b.mu.Lock()
	fn()
	b.mu.Unlock()
}

func (b *Batcher) dispatch() {
	defer b.wg.Done()
	for {
		var first *request
		select {
		case first = <-b.queue:
		case <-b.baseCtx.Done():
			return
		}
		// From here until runBatch finishes, the batch counts as active —
		// the drain loop in Close must not conclude while a pulled request
		// is in limbo between queue and runner.
		b.active.Add(1)
		sess, err := b.pool.Acquire(b.baseCtx)
		if err != nil {
			first.resp <- response{err: ErrClosed}
			b.active.Add(-1)
			continue
		}
		batch := b.collect(first)
		b.wg.Add(1)
		go b.runBatch(sess, batch)
	}
}

// collect fills a batch around the first request: everything already queued
// joins immediately; if the batch is still short of MaxBatch, the dispatcher
// lingers up to MaxLatency for stragglers. MaxLatency 0 dispatches
// immediately with whatever is queued.
func (b *Batcher) collect(first *request) []*request {
	batch := []*request{first}
	for len(batch) < b.maxBatch {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	if len(batch) == b.maxBatch || b.maxLatency <= 0 {
		return batch
	}
	timer := time.NewTimer(b.maxLatency)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-b.baseCtx.Done():
			return batch
		}
	}
	return batch
}

// shardResult carries one shard's slice of the batch through execution:
// the [lo, hi) range of live requests it covered, the session that ran it,
// and RunBatch's outcome.
type shardResult struct {
	lo, hi  int
	sess    *core.Session
	results [][]*tensor.Tensor
	err     error
}

// runBatch executes one micro-batch and distributes per-request results.
// Requests whose client vanished or whose deadline expired while queued are
// answered and dropped before execution. A multi-item batch is sharded
// across the acquired session plus any extra sessions TryAcquire yields
// without blocking — each shard a contiguous slice of the batch on its own
// goroutine — and the per-request responses rejoin in input order. A shard
// that panics fails only its own requests: the quarantined session is
// discarded from the pool (a replacement is created on demand), sibling
// shards are unaffected, and the failure is reported to the OnBatchDone
// callback for circuit breaking.
func (b *Batcher) runBatch(sess *core.Session, reqs []*request) {
	defer b.wg.Done()
	defer b.active.Add(-1)
	live := make([]*request, 0, len(reqs))
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			r.resp <- response{err: shedError(r.ctx)}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		b.pool.Release(sess)
		return
	}

	// Shard acquisition: one lane per batch item at most, and never blocking
	// — an exhausted pool just means a narrower (possibly single-lane) run.
	sessions := []*core.Session{sess}
	for len(sessions) < len(live) {
		extra := b.pool.TryAcquire()
		if extra == nil {
			break
		}
		sessions = append(sessions, extra)
	}

	b.mu.Lock()
	b.batches++
	b.items += uint64(len(live))
	if len(live) > b.maxObserved {
		b.maxObserved = len(live)
	}
	if len(sessions) > 1 {
		b.shardedBatches++
		b.shards += uint64(len(sessions))
	}
	b.mu.Unlock()
	batchID := b.nextBatch.Add(1)

	ctx, stop := b.batchContext(live)
	inputs := make([]*tensor.Tensor, len(live))
	for i, r := range live {
		inputs[i] = r.input
	}

	shards := make([]shardResult, len(sessions))
	for k := range shards {
		// Contiguous near-equal split: shard k covers [k*n/S, (k+1)*n/S).
		shards[k].lo = k * len(live) / len(sessions)
		shards[k].hi = (k + 1) * len(live) / len(sessions)
		shards[k].sess = sessions[k]
	}
	start := time.Now()
	for _, r := range live {
		b.metrics.ObserveQueueWait(start.Sub(r.enq))
	}
	if ferr := faults.Fire(faults.SiteBatcherDispatch, b.model); ferr != nil {
		for k := range shards {
			shards[k].err = ferr
		}
	} else {
		var wg sync.WaitGroup
		for k := 1; k < len(shards); k++ {
			wg.Add(1)
			go func(sr *shardResult) {
				defer wg.Done()
				sr.results, sr.err = sr.sess.RunBatch(ctx, inputs[sr.lo:sr.hi])
			}(&shards[k])
		}
		shards[0].results, shards[0].err = sess.RunBatch(ctx, inputs[shards[0].lo:shards[0].hi])
		wg.Wait()
	}
	elapsed := time.Since(start)
	stop()
	b.metrics.ObserveBatch(len(live), len(sessions), elapsed)

	// Panic isolation, per lane: a panicked session's arena may hold partial
	// writes — quarantine it out of the pool instead of recycling it. The
	// other lanes go back; RunBatch results are deep copies, so a session
	// can serve the next batch before responses are delivered.
	var firstFailure error
	for k := range shards {
		sr := &shards[k]
		var pe *core.ExecPanicError
		if errors.As(sr.err, &pe) || sr.sess.Corrupted() {
			b.pool.Discard(sr.sess)
			b.count(func() { b.panics++ })
			b.metrics.IncDiscard()
			b.metrics.IncPanic()
		} else {
			b.pool.Release(sr.sess)
		}
		if f := execFailure(sr.err); f != nil && firstFailure == nil {
			firstFailure = f
		}
	}
	b.observeLatency(elapsed)
	if b.onResult != nil {
		b.onResult(firstFailure)
	}

	for k := range shards {
		sr := &shards[k]
		err := sr.err
		done := sr.hi - sr.lo
		if err != nil {
			done = 0
			var be *core.BatchError
			if errors.As(err, &be) {
				// A cancelled shard still completed its first items; those
				// clients get real results, the rest the error.
				done = be.Completed
			}
			if b.baseCtx.Err() != nil && errors.Is(err, context.Canceled) {
				// The cancellation came from shutdown, not from the clients:
				// live callers should see "server closed", not a bare ctx
				// error.
				err = ErrClosed
			}
		}
		for i := sr.lo; i < sr.hi; i++ {
			r := live[i]
			if i-sr.lo < done {
				r.resp <- response{outs: sr.results[i-sr.lo], batchID: batchID}
			} else {
				r.resp <- response{err: perRequestError(r.ctx, err), batchID: batchID}
			}
		}
	}
}

// perRequestError specializes a batch-wide failure for one member request:
// a member whose own deadline expired reports ErrDeadline regardless of why
// the batch as a whole stopped.
func perRequestError(ctx context.Context, batchErr error) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrDeadline
	}
	return batchErr
}

// execFailure classifies a batch result for the circuit breaker: only
// genuine execution failures count, not client-caused aborts or shutdown.
func execFailure(err error) error {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, ErrClosed):
		return nil
	}
	return err
}

// observeLatency folds one batch execution time into the EWMA (α = 0.2)
// that backs deadline admission and Retry-After.
func (b *Batcher) observeLatency(d time.Duration) {
	old := b.ewmaNanos.Load()
	if old == 0 {
		b.ewmaNanos.Store(int64(d))
		return
	}
	b.ewmaNanos.Store(old + (int64(d)-old)/5)
}

// batchContext derives the execution context for one micro-batch: it cancels
// when the batcher shuts down, or once every member request's own ctx is
// done — one abandoned client must not cancel its batch-mates' work, but a
// fully abandoned batch stops mid-run instead of computing for nobody.
func (b *Batcher) batchContext(reqs []*request) (context.Context, func()) {
	ctx, cancel := context.WithCancel(b.baseCtx)
	remaining := int64(len(reqs))
	stops := make([]func() bool, len(reqs))
	for i, r := range reqs {
		stops[i] = context.AfterFunc(r.ctx, func() {
			if atomic.AddInt64(&remaining, -1) == 0 {
				cancel()
			}
		})
	}
	return ctx, func() {
		for _, s := range stops {
			s()
		}
		cancel()
	}
}

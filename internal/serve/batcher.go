package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Typed serving errors.
var (
	// ErrQueueFull is returned by Batcher.Do when the bounded request queue
	// is at capacity — the HTTP layer maps it to 429 (backpressure).
	ErrQueueFull = errors.New("serve: request queue is full")
	// ErrClosed is returned for requests that arrive during or after
	// shutdown.
	ErrClosed = errors.New("serve: server is closed")
)

// request is one in-flight inference waiting to be batched.
type request struct {
	ctx   context.Context
	input *tensor.Tensor
	resp  chan response
}

type response struct {
	outs []*tensor.Tensor
	err  error
}

// Batcher coalesces concurrent inference requests into micro-batches and
// dispatches them through Session.RunBatch on pooled sessions.
//
// One dispatcher goroutine owns the queue. For each batch it takes the first
// queued request, acquires a session (blocking here — not per request — is
// what creates the coalescing opportunity: while every session is busy,
// requests pile up in the queue), then fills the batch from the queue up to
// MaxBatch, waiting at most MaxLatency for stragglers, and hands the batch
// to a runner goroutine. Admission is bounded by the queue depth: a full
// queue rejects immediately with ErrQueueFull rather than queueing unbounded
// work.
type Batcher struct {
	pool       *SessionPool
	maxBatch   int
	maxLatency time.Duration
	queue      chan *request

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu          sync.Mutex
	batches     uint64
	items       uint64
	rejected    uint64
	maxObserved int
}

// BatchStats is a snapshot of the batcher's coalescing behaviour.
type BatchStats struct {
	// Batches counts dispatched micro-batches, Items the requests they
	// carried; Items/Batches is the mean observed batch size and
	// MaxObserved the largest single dispatch.
	Batches     uint64 `json:"batches"`
	Items       uint64 `json:"items"`
	MaxObserved int    `json:"max_observed"`
	// Rejected counts requests refused with ErrQueueFull.
	Rejected uint64 `json:"rejected"`
}

// NewBatcher starts the dispatcher. queueDepth bounds admission (minimum 1).
func NewBatcher(pool *SessionPool, maxBatch int, maxLatency time.Duration, queueDepth int) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Batcher{
		pool:       pool,
		maxBatch:   maxBatch,
		maxLatency: maxLatency,
		queue:      make(chan *request, queueDepth),
		baseCtx:    ctx,
		cancel:     cancel,
	}
	b.wg.Add(1)
	go b.dispatch()
	return b
}

// Do submits one input and blocks until its batch completes, the caller's
// ctx is done, or the batcher shuts down.
func (b *Batcher) Do(ctx context.Context, in *tensor.Tensor) ([]*tensor.Tensor, error) {
	if b.baseCtx.Err() != nil {
		return nil, ErrClosed
	}
	req := &request{ctx: ctx, input: in, resp: make(chan response, 1)}
	select {
	case b.queue <- req:
	default:
		b.mu.Lock()
		b.rejected++
		b.mu.Unlock()
		return nil, ErrQueueFull
	}
	select {
	case r := <-req.resp:
		return r.outs, r.err
	case <-ctx.Done():
		// The batch may still run this input (it only aborts once every
		// member is cancelled); the buffered resp channel lets the runner
		// complete without us.
		return nil, ctx.Err()
	case <-b.baseCtx.Done():
		select {
		case r := <-req.resp:
			return r.outs, r.err
		default:
			return nil, ErrClosed
		}
	}
}

// Close stops admission, waits for in-flight batches, and fails queued
// requests with ErrClosed.
func (b *Batcher) Close() {
	b.cancel()
	b.wg.Wait()
	for {
		select {
		case req := <-b.queue:
			req.resp <- response{err: ErrClosed}
		default:
			return
		}
	}
}

// Stats snapshots the coalescing counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatchStats{
		Batches:     b.batches,
		Items:       b.items,
		MaxObserved: b.maxObserved,
		Rejected:    b.rejected,
	}
}

func (b *Batcher) dispatch() {
	defer b.wg.Done()
	for {
		var first *request
		select {
		case first = <-b.queue:
		case <-b.baseCtx.Done():
			return
		}
		sess, err := b.pool.Acquire(b.baseCtx)
		if err != nil {
			first.resp <- response{err: ErrClosed}
			continue
		}
		batch := b.collect(first)
		b.wg.Add(1)
		go b.runBatch(sess, batch)
	}
}

// collect fills a batch around the first request: everything already queued
// joins immediately; if the batch is still short of MaxBatch, the dispatcher
// lingers up to MaxLatency for stragglers. MaxLatency 0 dispatches
// immediately with whatever is queued.
func (b *Batcher) collect(first *request) []*request {
	batch := []*request{first}
	for len(batch) < b.maxBatch {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	if len(batch) == b.maxBatch || b.maxLatency <= 0 {
		return batch
	}
	timer := time.NewTimer(b.maxLatency)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-b.baseCtx.Done():
			return batch
		}
	}
	return batch
}

// runBatch executes one micro-batch on an acquired session and distributes
// per-request results. Requests whose client vanished while queued are
// answered with their ctx error and dropped before execution.
func (b *Batcher) runBatch(sess *core.Session, reqs []*request) {
	defer b.wg.Done()
	live := make([]*request, 0, len(reqs))
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			r.resp <- response{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		b.pool.Release(sess)
		return
	}

	b.mu.Lock()
	b.batches++
	b.items += uint64(len(live))
	if len(live) > b.maxObserved {
		b.maxObserved = len(live)
	}
	b.mu.Unlock()

	ctx, stop := b.batchContext(live)
	inputs := make([]*tensor.Tensor, len(live))
	for i, r := range live {
		inputs[i] = r.input
	}
	results, err := sess.RunBatch(ctx, inputs)
	stop()
	// RunBatch results are deep copies, so the session can serve the next
	// batch before responses are delivered.
	b.pool.Release(sess)

	done := len(live)
	if err != nil {
		done = 0
		var be *core.BatchError
		if errors.As(err, &be) {
			// A cancelled batch still completed its first items; those
			// clients get real results, the rest the error.
			done = be.Completed
		}
		if b.baseCtx.Err() != nil {
			// The cancellation came from shutdown, not from the clients:
			// live callers should see "server closed", not a bare ctx error.
			err = ErrClosed
		}
	}
	for i, r := range live {
		if i < done {
			r.resp <- response{outs: results[i]}
		} else {
			r.resp <- response{err: err}
		}
	}
}

// batchContext derives the execution context for one micro-batch: it cancels
// when the batcher shuts down, or once every member request's own ctx is
// done — one abandoned client must not cancel its batch-mates' work, but a
// fully abandoned batch stops mid-run instead of computing for nobody.
func (b *Batcher) batchContext(reqs []*request) (context.Context, func()) {
	ctx, cancel := context.WithCancel(b.baseCtx)
	remaining := int64(len(reqs))
	stops := make([]func() bool, len(reqs))
	for i, r := range reqs {
		stops[i] = context.AfterFunc(r.ctx, func() {
			if atomic.AddInt64(&remaining, -1) == 0 {
				cancel()
			}
		})
	}
	return ctx, func() {
		for _, s := range stops {
			s()
		}
		cancel()
	}
}

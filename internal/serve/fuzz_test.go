package serve

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
)

// FuzzInferDecode hammers the infer-request decode path — JSON unmarshal
// plus requestTensor validation — with arbitrary bytes. The contract: never
// panic, never allocate proportionally to attacker-claimed shapes, and
// return exactly one of (tensor, error). CI runs the seed corpus; run
// `go test -fuzz FuzzInferDecode ./internal/serve` locally to explore.
func FuzzInferDecode(f *testing.F) {
	mod, err := core.Compile(models.TinyCNN(1), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptTransformElim, Threads: 1, Backend: machine.BackendSerial,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(mod.Close)

	f.Add([]byte(`{"inputs":[{"name":"input","shape":[1,3,32,32],"datatype":"FP32","data":[0]}]}`))
	f.Add([]byte(`{"inputs":[`))
	f.Add([]byte(`{"inputs":[]}`))
	f.Add([]byte(`{"inputs":[{},{}]}`))
	f.Add([]byte(`{"inputs":[{"shape":[1000000000,3],"data":[1]}]}`))
	f.Add([]byte(`{"inputs":[{"shape":[-1,-3,-32,-32],"datatype":"FP32","data":[]}]}`))
	f.Add([]byte(`{"inputs":[{"shape":[1,3,32,32],"datatype":"INT8","data":[1]}]}`))
	f.Add([]byte(`{"id":"x","inputs":[{"name":"input","shape":[1,3,32,32],"datatype":"FP32"}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req InferRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // the HTTP layer answers 400; nothing further to validate
		}
		in, err := requestTensor(mod, &req)
		if (in == nil) == (err == nil) {
			t.Fatalf("requestTensor: tensor=%v err=%v — want exactly one", in, err)
		}
	})
}

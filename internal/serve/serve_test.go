// Black-box tests for the serving subsystem: every test in this file drives
// the server exclusively through its HTTP surface (httptest + the v2 JSON
// protocol), the way a real client would. This suite is the template for
// testing future serving features: correctness is asserted against the
// engine's own outputs, concurrency runs under -race, coalescing and
// backpressure are asserted from observable behaviour (stats endpoint,
// status codes), never from package internals.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// newModule compiles the serving test model: small enough for -race
// concurrency tests, structurally rich (residual blocks), serial backend so
// pooled sessions genuinely parallelize.
func newModule(t testing.TB) *core.Module {
	t.Helper()
	m, err := core.Compile(models.TinyResNet(4), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptTransformElim, Threads: 1, Backend: machine.BackendSerial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func newServer(t testing.TB, mod *core.Module, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(mod, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// testInput builds the deterministic input for one client seed.
func testInput(seed uint64) *tensor.Tensor {
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(seed, 1)
	return in
}

func inferBody(t testing.TB, in *tensor.Tensor) []byte {
	t.Helper()
	body, err := json.Marshal(serve.InferRequest{
		Inputs: []serve.InferTensor{{
			Name: "input", Shape: in.Shape, Datatype: "FP32", Data: in.Data,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postInfer sends one inference and decodes the response.
func postInfer(t testing.TB, client *http.Client, url string, body []byte) (*serve.InferResponse, int) {
	t.Helper()
	resp, err := client.Post(url+"/v2/models/tiny-resnet/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var ir serve.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	return &ir, resp.StatusCode
}

// wantOutput runs the reference engine path for one input.
func wantOutput(t testing.TB, mod *core.Module, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	outs, err := mod.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return outs[0]
}

func checkInferResponse(t *testing.T, ir *serve.InferResponse, want *tensor.Tensor) {
	t.Helper()
	if ir.ModelName != "tiny-resnet" {
		t.Fatalf("model_name %q", ir.ModelName)
	}
	if len(ir.Outputs) != 1 {
		t.Fatalf("got %d outputs", len(ir.Outputs))
	}
	out := ir.Outputs[0]
	if out.Datatype != "FP32" || len(out.Data) != len(want.Data) {
		t.Fatalf("output %q/%v with %d values, want %d", out.Datatype, out.Shape, len(out.Data), len(want.Data))
	}
	for i, v := range out.Data {
		if v != want.Data[i] {
			t.Fatalf("output[%d] = %v, want %v (served result must be bit-identical)", i, v, want.Data[i])
		}
	}
}

func TestInferMatchesEngine(t *testing.T) {
	mod := newModule(t)
	_, ts := newServer(t, mod, serve.Config{PoolSize: 1, MaxLatency: serve.NoLatency})
	in := testInput(7)
	ir, code := postInfer(t, ts.Client(), ts.URL, inferBody(t, in))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	checkInferResponse(t, ir, wantOutput(t, mod, in))
}

func TestProtocolEndpoints(t *testing.T) {
	mod := newModule(t)
	_, ts := newServer(t, mod, serve.Config{PoolSize: 1})
	client := ts.Client()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	if code, _ := get("/v2"); code != http.StatusOK {
		t.Fatalf("/v2: %d", code)
	}
	if code, m := get("/v2/health/live"); code != http.StatusOK || m["live"] != true {
		t.Fatalf("/v2/health/live: %d %v", code, m)
	}
	if code, m := get("/v2/health/ready"); code != http.StatusOK || m["ready"] != true {
		t.Fatalf("/v2/health/ready: %d %v", code, m)
	}
	if code, m := get("/v2/models/tiny-resnet"); code != http.StatusOK || m["platform"] != "neocpu-go" {
		t.Fatalf("model metadata: %d %v", code, m)
	}
	if code, _ := get("/v2/models/tiny-resnet/ready"); code != http.StatusOK {
		t.Fatalf("model ready: %d", code)
	}
	if code, _ := get("/v2/models/other-model/ready"); code != http.StatusNotFound {
		t.Fatalf("unknown model ready: %d, want 404", code)
	}
	if code, _ := get("/v2/stats"); code != http.StatusOK {
		t.Fatalf("/v2/stats: %d", code)
	}

	// Error paths: every malformed request must be a clean 4xx, never a 500.
	post := func(path string, body string) int {
		t.Helper()
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	infer := "/v2/models/tiny-resnet/infer"
	if code := post("/v2/models/nope/infer", "{}"); code != http.StatusNotFound {
		t.Fatalf("wrong model: %d, want 404", code)
	}
	if code := post(infer, "{nope"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d, want 400", code)
	}
	if code := post(infer, `{"inputs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("no inputs: %d, want 400", code)
	}
	if code := post(infer, `{"inputs":[{"name":"input","shape":[1,3,8,8],"datatype":"FP32","data":[0]}]}`); code != http.StatusBadRequest {
		t.Fatalf("wrong shape: %d, want 400", code)
	}
	if code := post(infer, `{"inputs":[{"name":"input","shape":[1,3,32,32],"datatype":"INT64","data":[0]}]}`); code != http.StatusBadRequest {
		t.Fatalf("wrong datatype: %d, want 400", code)
	}
	if code := post(infer, `{"inputs":[{"name":"input","shape":[1,3,32,32],"datatype":"FP32","data":[1,2,3]}]}`); code != http.StatusBadRequest {
		t.Fatalf("short data: %d, want 400", code)
	}
}

// TestConcurrentClientsCoalesce is the acceptance-criteria test: 64
// concurrent clients under -race, every response bit-identical to the
// engine's own output for that client's distinct input, and the micro-batcher
// must demonstrably coalesce (observed batch sizes > 1) while requests
// contend for a pool smaller than the client count.
func TestConcurrentClientsCoalesce(t *testing.T) {
	mod := newModule(t)
	srv, ts := newServer(t, mod, serve.Config{
		PoolSize:   2,
		MaxBatch:   8,
		MaxLatency: 5 * time.Millisecond,
		QueueDepth: 256,
	})

	const clients = 64
	const runsEach = 2
	// Precompute per-client reference outputs (distinct inputs, so a
	// misrouted batch response cannot go unnoticed).
	bodies := make([][]byte, clients)
	wants := make([]*tensor.Tensor, clients)
	for c := 0; c < clients; c++ {
		in := testInput(uint64(100 + c))
		bodies[c] = inferBody(t, in)
		wants[c] = wantOutput(t, mod, in)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for r := 0; r < runsEach; r++ {
				resp, err := client.Post(ts.URL+"/v2/models/tiny-resnet/infer", "application/json", bytes.NewReader(bodies[c]))
				if err != nil {
					errs <- err
					return
				}
				var ir serve.InferResponse
				err = json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d run %d: status %d", c, r, resp.StatusCode)
					return
				}
				if len(ir.Outputs) != 1 || len(ir.Outputs[0].Data) != len(wants[c].Data) {
					errs <- fmt.Errorf("client %d run %d: malformed outputs", c, r)
					return
				}
				for i, v := range ir.Outputs[0].Data {
					if v != wants[c].Data[i] {
						errs <- fmt.Errorf("client %d run %d: output[%d] = %v, want %v (batching must be deterministic)", c, r, i, v, wants[c].Data[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Batch.Items != clients*runsEach {
		t.Fatalf("batcher carried %d items, want %d", st.Batch.Items, clients*runsEach)
	}
	if st.Batch.MaxObserved <= 1 {
		t.Fatalf("max observed batch size %d: micro-batcher never coalesced under %d concurrent clients", st.Batch.MaxObserved, clients)
	}
	if st.Pool.Size > 2 {
		t.Fatalf("pool grew to %d sessions, bound is 2", st.Pool.Size)
	}
	t.Logf("batches=%d items=%d mean=%.2f max=%d pool_waits=%d",
		st.Batch.Batches, st.Batch.Items,
		float64(st.Batch.Items)/float64(st.Batch.Batches), st.Batch.MaxObserved, st.Pool.Waits)
}

// TestBackpressure asserts the bounded queue: a burst far beyond
// queue+pool capacity must see 429s (with Retry-After) while admitted
// requests still complete correctly.
func TestBackpressure(t *testing.T) {
	// Serve the slow unoptimized-baseline build of the model: each inference
	// must outlast the Go scheduler's preemption tick (~10ms) so that, even
	// on a single-CPU machine, the burst's client goroutines get scheduled
	// against an occupied session and pile into the bounded queue.
	mod, err := core.Compile(models.TinyResNet(4), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptNone, Threads: 1, Backend: machine.BackendSerial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mod.Close)
	srv, ts := newServer(t, mod, serve.Config{
		PoolSize:   1,
		MaxBatch:   1,
		MaxLatency: serve.NoLatency,
		QueueDepth: 1,
	})
	in := testInput(3)
	body := inferBody(t, in)
	want := wantOutput(t, mod, in)

	const burst = 64
	var wg sync.WaitGroup
	type result struct {
		code  int
		retry string
		ir    serve.InferResponse
	}
	results := make([]result, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v2/models/tiny-resnet/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			results[i].code = resp.StatusCode
			results[i].retry = resp.Header.Get("Retry-After")
			if resp.StatusCode == http.StatusOK {
				json.NewDecoder(resp.Body).Decode(&results[i].ir)
			} else {
				io.Copy(io.Discard, resp.Body)
			}
		}(i)
	}
	wg.Wait()

	var ok, rejected int
	for _, r := range results {
		switch r.code {
		case http.StatusOK:
			ok++
			if len(r.ir.Outputs) != 1 || r.ir.Outputs[0].Data[0] != want.Data[0] {
				t.Fatal("admitted request returned wrong output under pressure")
			}
		case http.StatusTooManyRequests:
			rejected++
			if r.retry == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", r.code)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded under burst")
	}
	if rejected == 0 {
		t.Fatalf("no request was rejected: %d-deep queue absorbed a %d-request burst", 1, burst)
	}
	if st := srv.Stats(); st.Batch.Rejected == 0 {
		t.Fatal("stats did not count rejections")
	}
	t.Logf("burst=%d ok=%d rejected=%d", burst, ok, rejected)
}

// TestCancellationMidBatch: clients that abandon requests while they sit in
// the coalescing window must not poison the batch or wedge the server.
func TestCancellationMidBatch(t *testing.T) {
	mod := newModule(t)
	_, ts := newServer(t, mod, serve.Config{
		PoolSize:   1,
		MaxBatch:   4,
		MaxLatency: 300 * time.Millisecond,
		QueueDepth: 8,
	})
	body := inferBody(t, testInput(9))

	// Two requests enter the 300ms coalescing window, then both clients
	// hang up mid-batch.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v2/models/tiny-resnet/infer", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := ts.Client().Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err == nil {
				t.Error("cancelled request unexpectedly completed")
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let both enter the window
	cancel()
	wg.Wait()

	// The server must still answer a live client, promptly and correctly.
	in := testInput(11)
	ir, code := postInfer(t, ts.Client(), ts.URL, inferBody(t, in))
	if code != http.StatusOK {
		t.Fatalf("post-cancellation status %d", code)
	}
	checkInferResponse(t, ir, wantOutput(t, mod, in))
}

// TestCloseUnreadies: a closed server reports unready and refuses inference
// instead of hanging.
func TestCloseUnreadies(t *testing.T) {
	mod := newModule(t)
	s, err := serve.New(mod, "", serve.Config{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()

	resp, err := ts.Client().Get(ts.URL + "/v2/health/ready")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready after close: %d, want 503", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/v2/models/tiny-resnet/infer", "application/json",
		bytes.NewReader(inferBody(t, testInput(1))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer after close: %d, want 503", resp.StatusCode)
	}
}

// TestInferAllocBudget is the pool-reuse acceptance check: steady-state
// request handling must allocate less than one session arena per request —
// i.e. serving N requests through pooled sessions beats creating a session
// (or allocating its tensors) per request by construction.
func TestInferAllocBudget(t *testing.T) {
	mod := newModule(t)
	srv, _ := newServer(t, mod, serve.Config{PoolSize: 1, MaxLatency: serve.NoLatency})
	h := srv.Handler()
	body := inferBody(t, testInput(5))
	do := func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v2/models/tiny-resnet/infer", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	for i := 0; i < 3; i++ {
		do() // warm the pool and the JSON paths
	}
	arena := srv.Stats().Pool.ArenaBytesPerSession
	if arena == 0 {
		t.Fatal("arena size hook reported 0")
	}

	const reps = 32
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		do()
	}
	runtime.ReadMemStats(&after)
	perReq := (after.TotalAlloc - before.TotalAlloc) / reps
	t.Logf("per-request bytes: %d, one arena: %d", perReq, arena)
	if perReq >= uint64(arena) {
		t.Fatalf("per-request allocation %dB >= one arena (%dB): pool reuse is not paying for itself", perReq, arena)
	}
}

// BenchmarkServeInfer measures the full HTTP handler path per request
// (decode, batch, execute, encode) on a pooled session. Run with -benchmem:
// B/op must sit well below the reported arena_bytes/session.
func BenchmarkServeInfer(b *testing.B) {
	mod := newModule(b)
	srv, _ := newServer(b, mod, serve.Config{PoolSize: 1, MaxLatency: serve.NoLatency})
	h := srv.Handler()
	body := inferBody(b, testInput(5))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v2/models/tiny-resnet/infer", bytes.NewReader(body))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d", rec.Code)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v2/models/tiny-resnet/infer", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(srv.Stats().Pool.ArenaBytesPerSession), "arena_bytes/session")
}

package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/tensor"
)

// TestTryAcquireNeverBlocks: the sharding path's acquisition primitive must
// hand out idle sessions, grow under the bound, and report exhaustion as nil
// instead of waiting.
func TestTryAcquireNeverBlocks(t *testing.T) {
	p, err := NewSessionPool(testModule(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := p.TryAcquire() // the eagerly created warm session
	if a == nil {
		t.Fatal("TryAcquire missed the warm idle session")
	}
	b := p.TryAcquire() // under the bound: grows
	if b == nil || b == a {
		t.Fatalf("TryAcquire under the bound must grow a fresh session, got %p vs %p", b, a)
	}
	if c := p.TryAcquire(); c != nil {
		t.Fatal("exhausted pool must yield nil, not a session")
	}
	if st := p.Stats(); st.Size != 2 || st.Waits != 0 {
		t.Fatalf("pool after TryAcquire exhaustion: %+v, want size 2 and no waits", st)
	}
	p.Release(a)
	if d := p.TryAcquire(); d != a {
		t.Fatal("TryAcquire did not reuse the released session")
	}
	p.Release(a)
	p.Release(b)
}

// TestBatcherShardsAcrossIdleSessions: a coalesced multi-item batch must be
// split across spare pool sessions and rejoined in input order with outputs
// bit-identical to unsharded execution.
func TestBatcherShardsAcrossIdleSessions(t *testing.T) {
	mod := testModule(t)
	p, err := NewSessionPool(mod, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher("test", p, Config{MaxBatch: 8, MaxLatency: 100 * time.Millisecond, QueueDepth: 16})
	defer b.Close()

	const n = 6
	inputs := make([]*tensor.Tensor, n)
	want := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		inputs[i].FillRandom(uint64(i)+7, 1)
		outs, err := mod.Run(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = outs[0]
	}

	got := make([][]*tensor.Tensor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = b.Do(context.Background(), inputs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if d := tensor.MaxAbsDiff(want[i], got[i][0]); d != 0 {
			t.Fatalf("request %d: sharded output diverges from direct run by %g", i, d)
		}
	}
	st := b.Stats()
	if st.ShardedBatches == 0 || st.Shards < 2 {
		t.Fatalf("no sharding observed: %+v (pool %+v)", st, p.Stats())
	}
	if st.Shards < st.ShardedBatches*2 {
		t.Fatalf("sharded batches must use at least two lanes each: %+v", st)
	}
}

// TestShardPanicIsolatesSingleLane: a panic inside one shard must fail only
// that shard's requests and quarantine only that shard's session — sibling
// lanes deliver results, and the pool replaces the discarded session so the
// batcher keeps serving.
func TestShardPanicIsolatesSingleLane(t *testing.T) {
	defer faults.Reset()
	mod := testModule(t)
	p, err := NewSessionPool(mod, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher("test", p, Config{MaxBatch: 8, MaxLatency: 100 * time.Millisecond, QueueDepth: 16})
	defer b.Close()

	faults.Inject(faults.SiteSessionRun, faults.Times(1, faults.Panic("chaos: shard lane blown")))

	const n = 4
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(3, 1)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Do(context.Background(), in)
		}(i)
	}
	wg.Wait()

	panicked, succeeded := 0, 0
	for i := 0; i < n; i++ {
		var pe *core.ExecPanicError
		switch {
		case errs[i] == nil:
			succeeded++
		case errors.As(errs[i], &pe):
			panicked++
		default:
			t.Fatalf("request %d: unexpected error %v", i, errs[i])
		}
	}
	if panicked == 0 {
		t.Fatal("injected panic surfaced on no request")
	}
	if succeeded == 0 {
		t.Fatalf("panic was not isolated to one lane: all %d requests failed (stats %+v)", n, b.Stats())
	}
	if st := p.Stats(); st.Discards != 1 {
		t.Fatalf("exactly the panicked lane's session must be discarded, got %+v", st)
	}
	if st := b.Stats(); st.Panics != 1 {
		t.Fatalf("panic counter: %+v, want 1", st)
	}

	// The pool regrows on demand: the batcher must still serve.
	outs, err := b.Do(context.Background(), in)
	if err != nil {
		t.Fatalf("batcher did not recover after shard discard: %v", err)
	}
	ref, err := mod.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref[0], outs[0]); d != 0 {
		t.Fatalf("post-recovery output diverges by %g", d)
	}
}

package serve

// This file implements the model repository backed by a directory of
// artifact bundles: each <name>.neob file (cmd/neocpu-compile -o) is one
// loadable model, with an optional <name>.config.json sidecar tuning its
// serving stack. This is the compile-once/deploy-everywhere half of the
// paper's serving story — the serving host never searches or packs, it
// deserializes finished schedules and weights.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// BundleExt is the artifact-bundle filename extension a repository directory
// is scanned for.
const BundleExt = ".neob"

// DirSource is a ModelSource over a directory of artifact bundles. The model
// name is the filename stem: models/resnet-50.neob serves as "resnet-50".
// The directory is re-listed on every List call, so bundles dropped in after
// boot become loadable without a restart.
type DirSource struct {
	// Dir is the repository directory.
	Dir string
	// Resolve rebuilds model graph structure by name during bundle loading;
	// models.ResolveGraph in the shipped binaries.
	Resolve core.GraphResolver
}

// List returns the model names (filename stems) of every bundle in the
// directory, sorted.
func (d *DirSource) List() ([]string, error) {
	entries, err := os.ReadDir(d.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), BundleExt) {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), BundleExt))
	}
	sort.Strings(names)
	return names, nil
}

// Load opens the named bundle and deserializes it into an executable module
// — plan re-applied, packed weights installed, no search.
func (d *DirSource) Load(name string, opts core.Options) (*core.Module, error) {
	if strings.ContainsAny(name, `/\`) || name == "." || name == ".." {
		// Model names come off the URL path; never let them escape Dir.
		return nil, fmt.Errorf("serve: invalid model name %q", name)
	}
	f, err := os.Open(filepath.Join(d.Dir, name+BundleExt))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// The fault site wraps the byte stream, so injected torn reads exercise
	// the same truncation path a bundle observed mid-write would take.
	return core.LoadBundle(faults.WrapReader(faults.SiteBundleRead, name, f), d.Resolve, opts)
}

// sidecarConfig is the on-disk shape of a <name>.config.json sidecar. All
// fields are optional; absent ones fall back to the registry default.
type sidecarConfig struct {
	PoolSize     *int     `json:"pool_size"`
	ArenaBudget  *int     `json:"arena_budget"`
	MaxBatch     *int     `json:"max_batch"`
	MaxLatencyMS *float64 `json:"max_latency_ms"` // negative disables the straggler window
	QueueDepth   *int     `json:"queue_depth"`
	// RequestTimeoutMS is the model's default per-request deadline budget;
	// negative disables the server-side budget.
	RequestTimeoutMS *float64 `json:"request_timeout_ms"`
	// MaxBodyBytes caps infer request bodies (0 derives from the input
	// signature).
	MaxBodyBytes *int64 `json:"max_body_bytes"`
}

// Config implements ConfigSource: per-model serving configuration from a
// <name>.config.json sidecar next to the bundle.
func (d *DirSource) Config(name string) (Config, bool, error) {
	if strings.ContainsAny(name, `/\`) || name == "." || name == ".." {
		return Config{}, false, fmt.Errorf("serve: invalid model name %q", name)
	}
	raw, err := os.ReadFile(filepath.Join(d.Dir, name+".config.json"))
	if os.IsNotExist(err) {
		return Config{}, false, nil
	}
	if err != nil {
		return Config{}, false, err
	}
	var sc sidecarConfig
	if err := json.Unmarshal(raw, &sc); err != nil {
		return Config{}, false, fmt.Errorf("serve: %s.config.json: %w", name, err)
	}
	var c Config
	if sc.PoolSize != nil {
		c.PoolSize = *sc.PoolSize
	}
	if sc.ArenaBudget != nil {
		c.ArenaBudget = *sc.ArenaBudget
	}
	if sc.MaxBatch != nil {
		c.MaxBatch = *sc.MaxBatch
	}
	if sc.MaxLatencyMS != nil {
		if *sc.MaxLatencyMS < 0 {
			c.MaxLatency = NoLatency
		} else {
			c.MaxLatency = time.Duration(*sc.MaxLatencyMS * float64(time.Millisecond))
		}
	}
	if sc.QueueDepth != nil {
		c.QueueDepth = *sc.QueueDepth
	}
	if sc.RequestTimeoutMS != nil {
		if *sc.RequestTimeoutMS < 0 {
			c.RequestTimeout = NoTimeout
		} else {
			c.RequestTimeout = time.Duration(*sc.RequestTimeoutMS * float64(time.Millisecond))
		}
	}
	if sc.MaxBodyBytes != nil {
		c.MaxBodyBytes = *sc.MaxBodyBytes
	}
	return c, true, nil
}

// Field-contract tests for the JSON-lines access log: every inference
// request — success or any error path (400/404/413/429/504) — must emit
// exactly one line, each line valid JSON carrying exactly the contracted
// keys, with code/model/batch_id agreeing with what the client saw.
package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
)

// syncBuffer is a mutex-guarded log sink; the server writes lines while
// tests (and under -race, concurrent requests) read them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSuffix(b.buf.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// accessLine is the contracted access-log schema.
type accessLine struct {
	Time       string  `json:"time"`
	Model      string  `json:"model"`
	Code       int     `json:"code"`
	LatencyMS  float64 `json:"latency_ms"`
	BatchID    uint64  `json:"batch_id"`
	DeadlineMS int64   `json:"deadline_ms"`
	ID         string  `json:"id"`
}

var accessLogKeys = map[string]bool{
	"time": true, "model": true, "code": true, "latency_ms": true,
	"batch_id": true, "deadline_ms": true, "id": true,
}

// parseAccessLine decodes one line and rejects unknown or missing keys.
func parseAccessLine(t *testing.T, line string) accessLine {
	t.Helper()
	var raw map[string]any
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	for k := range raw {
		if !accessLogKeys[k] {
			t.Fatalf("access log line %q: unknown key %q", line, k)
		}
	}
	for _, k := range []string{"time", "model", "code", "latency_ms", "batch_id", "deadline_ms"} {
		if _, ok := raw[k]; !ok {
			t.Fatalf("access log line %q: missing key %q", line, k)
		}
	}
	var al accessLine
	if err := json.Unmarshal([]byte(line), &al); err != nil {
		t.Fatal(err)
	}
	if _, err := time.Parse(time.RFC3339Nano, al.Time); err != nil {
		t.Fatalf("access log time %q: %v", al.Time, err)
	}
	if al.LatencyMS < 0 {
		t.Fatalf("access log latency %v < 0", al.LatencyMS)
	}
	return al
}

func TestAccessLogFieldContract(t *testing.T) {
	mod := newModule(t)
	buf := &syncBuffer{}
	okBody := inferBody(t, testInput(5))
	srv, _ := newServer(t, mod, serve.Config{
		PoolSize: 1, MaxLatency: serve.NoLatency,
		AccessLog:    buf,
		MaxBodyBytes: int64(len(okBody)) + 4096,
	})
	h := srv.Handler()

	// An id-carrying body, to check the optional field round-trips.
	var withID serve.InferRequest
	if err := json.Unmarshal(okBody, &withID); err != nil {
		t.Fatal(err)
	}
	withID.ID = "req-042"
	idBody, err := json.Marshal(withID)
	if err != nil {
		t.Fatal(err)
	}
	oversized := append(bytes.Repeat([]byte(" "), 8192), okBody...)

	cases := []struct {
		name      string
		model     string
		body      []byte
		timeout   string // X-Request-Timeout header, "" = none
		wantCode  int
		wantBatch bool // batch_id must be nonzero (request reached a batch)
		wantID    string
	}{
		// The 200 goes first: it primes the latency EWMA that makes the
		// 1ns-budget case below fail deadline admission deterministically.
		{"ok", "tiny-resnet", okBody, "", http.StatusOK, true, ""},
		{"ok-with-id", "tiny-resnet", idBody, "", http.StatusOK, true, "req-042"},
		{"malformed-json", "tiny-resnet", []byte("{nope"), "", http.StatusBadRequest, false, ""},
		{"unknown-model", "nope", okBody, "", http.StatusNotFound, false, ""},
		{"oversized-413", "tiny-resnet", oversized, "", http.StatusRequestEntityTooLarge, false, ""},
		{"deadline-504", "tiny-resnet", okBody, "1ns", http.StatusGatewayTimeout, false, ""},
	}
	for i, tc := range cases {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v2/models/"+tc.model+"/infer", bytes.NewReader(tc.body))
		if tc.timeout != "" {
			req.Header.Set("X-Request-Timeout", tc.timeout)
		}
		h.ServeHTTP(rec, req)
		if rec.Code != tc.wantCode {
			t.Fatalf("%s: status %d, want %d", tc.name, rec.Code, tc.wantCode)
		}
		lines := buf.lines()
		if len(lines) != i+1 {
			t.Fatalf("%s: %d log lines after %d requests", tc.name, len(lines), i+1)
		}
		al := parseAccessLine(t, lines[i])
		if al.Model != tc.model {
			t.Fatalf("%s: logged model %q, want %q", tc.name, al.Model, tc.model)
		}
		if al.Code != tc.wantCode {
			t.Fatalf("%s: logged code %d, want %d", tc.name, al.Code, tc.wantCode)
		}
		if tc.wantBatch && al.BatchID == 0 {
			t.Fatalf("%s: batch_id 0 for a served request", tc.name)
		}
		if !tc.wantBatch && al.BatchID != 0 {
			t.Fatalf("%s: batch_id %d for a request that never reached a batch", tc.name, al.BatchID)
		}
		if al.ID != tc.wantID {
			t.Fatalf("%s: logged id %q, want %q", tc.name, al.ID, tc.wantID)
		}
	}

	// Distinct requests in the same batch window share a batch_id namespace:
	// sequential MaxBatch-1 requests get distinct, increasing IDs.
	lines := buf.lines()
	first, second := parseAccessLine(t, lines[0]), parseAccessLine(t, lines[1])
	if second.BatchID <= first.BatchID {
		t.Fatalf("batch IDs not increasing: %d then %d", first.BatchID, second.BatchID)
	}
}

// TestAccessLog429 drives the bounded queue into backpressure and checks the
// log agrees line-for-line with the client-observed outcome multiset.
func TestAccessLog429(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn")
	buf := &syncBuffer{}
	// PoolSize 1 so only one delayed batch can be in flight: the dispatcher
	// blocks acquiring a second session, the depth-1 queue fills behind it,
	// and the rest of the burst must answer 429. (With the auto-sized pool
	// every burst request gets its own session and nothing rejects.)
	cfg := serve.RegistryConfig{Defaults: serve.Config{
		PoolSize: 1, MaxBatch: 1, MaxLatency: serve.NoLatency, QueueDepth: 1,
		BreakerThreshold: -1, DrainTimeout: time.Second,
		AccessLog: buf,
	}}
	_, ts := chaosServer(t, dir, cfg, "tiny-cnn")
	body := inferBody(t, chaosInput())

	faults.Inject(faults.SiteBatcherDispatch,
		faults.OnLabel("tiny-cnn", faults.Delay(40*time.Millisecond)))

	const burst = 6
	var mu sync.Mutex
	clientCodes := map[int]int{}
	var wg sync.WaitGroup
	for c := 0; c < burst; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, _, err := chaosPost(ts, "tiny-cnn", body, nil)
			if err != nil {
				t.Errorf("transport error: %v", err)
				return
			}
			mu.Lock()
			clientCodes[status]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if clientCodes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("burst produced no 429 (counts %v)", clientCodes)
	}

	// The handler logs after writing the response, so a client can observe
	// its response a beat before the line lands: poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var lines []string
	for time.Now().Before(deadline) {
		if lines = buf.lines(); len(lines) >= burst {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(lines) != burst {
		t.Fatalf("%d log lines for %d requests", len(lines), burst)
	}
	logged := map[int]int{}
	for _, line := range lines {
		al := parseAccessLine(t, line)
		if al.Model != "tiny-cnn" {
			t.Fatalf("logged model %q", al.Model)
		}
		if al.Code == http.StatusTooManyRequests && al.BatchID != 0 {
			t.Fatalf("429 logged with batch_id %d", al.BatchID)
		}
		logged[al.Code]++
	}
	for code, n := range clientCodes {
		if logged[code] != n {
			t.Fatalf("log counted %d x %d, clients saw %d (log %v, clients %v)",
				logged[code], code, n, logged, clientCodes)
		}
	}
}

package schedule

import (
	"bytes"
	"testing"

	"repro/internal/machine"
)

var testWL = machine.ConvWorkload{
	InC: 32, InH: 14, InW: 14, OutC: 64, KH: 3, KW: 3,
	StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
}

func TestDivisors(t *testing.T) {
	got := divisors(64)
	want := []int{64, 32, 16, 8, 4, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("divisors(64) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors(64) = %v, want %v", got, want)
		}
	}
	if d := divisors(3); len(d) != 2 || d[0] != 3 || d[1] != 1 {
		t.Fatalf("divisors(3) = %v", d)
	}
}

func TestCandidatesCoverSpace(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	cands := Candidates(testWL, tgt)
	// 32 has 6 divisors, 64 has 7; all <= 64. 6*7*5*2 = 420.
	if len(cands) != 420 {
		t.Fatalf("candidate count = %d, want 420", len(cands))
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if testWL.InC%c.ICBlock != 0 || testWL.OutC%c.OCBlock != 0 {
			t.Fatalf("candidate %v does not divide channels", c)
		}
		k := c.String()
		if seen[k] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[k] = true
	}
}

func TestCandidatesCapBlocks(t *testing.T) {
	wl := testWL
	wl.InC, wl.OutC = 512, 2048
	for _, c := range Candidates(wl, machine.IntelSkylakeC5()) {
		if c.ICBlock > 64 || c.OCBlock > 64 {
			t.Fatalf("block factor above cap: %v", c)
		}
	}
}

func TestLocalSearchSortedAndSensible(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	results := LocalSearch(testWL, tgt, CostModelEvaluator(tgt))
	for i := 1; i < len(results); i++ {
		if results[i].Time < results[i-1].Time {
			t.Fatalf("results not ascending at %d", i)
		}
	}
	best := results[0].Sched
	// On AVX-512 the winning schedule must use full 16-lane vectors.
	if best.OCBlock%tgt.VectorLanes != 0 {
		t.Fatalf("best schedule %v does not fill vector lanes", best)
	}
	// And enough accumulators to hide FMA latency.
	if best.RegN < tgt.FMALatency*tgt.FMAPerCycle/2 {
		t.Fatalf("best schedule %v has too few accumulators", best)
	}
}

func TestLocalSearchBeatsNaiveChoice(t *testing.T) {
	tgt := machine.ARMCortexA72()
	results := LocalSearch(testWL, tgt, CostModelEvaluator(tgt))
	best := results[0].Time
	worst := results[len(results)-1].Time
	if worst/best < 1.5 {
		t.Fatalf("search space too flat: best %v worst %v", best, worst)
	}
}

func TestBestByBlockPair(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	results := LocalSearch(testWL, tgt, CostModelEvaluator(tgt))
	pairs := BestByBlockPair(results)
	// 6 ic divisors * 7 oc divisors = 42 pairs.
	if len(pairs) != 42 {
		t.Fatalf("pair count = %d, want 42", len(pairs))
	}
	// Must stay ascending and unique per pair.
	seen := map[[2]int]bool{}
	for i, r := range pairs {
		key := [2]int{r.Sched.ICBlock, r.Sched.OCBlock}
		if seen[key] {
			t.Fatalf("pair %v repeated", key)
		}
		seen[key] = true
		if i > 0 && pairs[i].Time < pairs[i-1].Time {
			t.Fatal("pairs not ascending")
		}
	}
	// The overall best must survive the reduction.
	if pairs[0].Time != results[0].Time {
		t.Fatal("best result lost in pair reduction")
	}
}

func TestDBMemoizes(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	db := NewDB()
	calls := 0
	eval := func(wl machine.ConvWorkload, s machine.ConvSchedule) float64 {
		calls++
		return CostModelEvaluator(tgt)(wl, s)
	}
	r1 := db.Search(tgt, testWL, eval)
	n := calls
	r2 := db.Search(tgt, testWL, eval)
	if calls != n {
		t.Fatal("second search must hit the memo")
	}
	if len(r1) != len(r2) || r1[0] != r2[0] {
		t.Fatal("memoized results differ")
	}
	if db.Len() != 1 {
		t.Fatalf("db len = %d", db.Len())
	}
	// Different target: separate entry.
	db.Search(machine.ARMCortexA72(), testWL, eval)
	if db.Len() != 2 {
		t.Fatalf("db len = %d, want 2", db.Len())
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	db := NewDB()
	db.Search(tgt, testWL, CostModelEvaluator(tgt))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	r1, _ := db.Lookup(tgt, testWL)
	r2, ok := db2.Lookup(tgt, testWL)
	if !ok || len(r1) != len(r2) {
		t.Fatal("round trip lost entries")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
	if err := db2.Load(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestMeasuredEvaluatorRuns(t *testing.T) {
	// A tiny workload measured for real: the blocked kernel must execute and
	// return a positive time.
	wl := machine.ConvWorkload{InC: 8, InH: 8, InW: 8, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	eval := MeasuredEvaluator(2)
	s := machine.ConvSchedule{ICBlock: 4, OCBlock: 4, RegN: 4, UnrollKer: true}
	got := eval(wl, s)
	if got <= 0 {
		t.Fatalf("measured time = %v", got)
	}
}

func TestDBConcurrentAccess(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	db := NewDB()
	eval := CostModelEvaluator(tgt)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			wl := testWL
			wl.OutC = 16 << (i % 3)
			db.Search(tgt, wl, eval)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if db.Len() != 3 {
		t.Fatalf("db len = %d, want 3", db.Len())
	}
}

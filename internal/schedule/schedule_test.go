package schedule

import (
	"bytes"
	"testing"

	"repro/internal/machine"
)

var testWL = machine.ConvWorkload{
	InC: 32, InH: 14, InW: 14, OutC: 64, KH: 3, KW: 3,
	StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
}

func TestDivisors(t *testing.T) {
	got := divisors(64)
	want := []int{64, 32, 16, 8, 4, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("divisors(64) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors(64) = %v, want %v", got, want)
		}
	}
	if d := divisors(3); len(d) != 2 || d[0] != 3 || d[1] != 1 {
		t.Fatalf("divisors(3) = %v", d)
	}
}

func TestCandidatesCoverSpace(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	cands := Candidates(testWL, tgt)
	// 32 has 6 divisors, 64 has 7; all <= 64. reg_n ∈ {32,16,8,4,2} is
	// trimmed by the 14-wide output to {8,4,2} plus the narrowest clamped
	// value (16, one full-width tile); 32 duplicates 16's clamp and is
	// dropped. Each of the 42 block pairs yields 4*2 direct schedules plus
	// 1 winograd candidate (the workload is 3x3 stride-1), and every schedule
	// is expanded by the 3 grain candidates: 42*(8+1)*3 = 1134.
	if len(cands) != 1134 {
		t.Fatalf("candidate count = %d, want 1134", len(cands))
	}
	seen := map[string]bool{}
	winograd := 0
	for _, c := range cands {
		if testWL.InC%c.ICBlock != 0 || testWL.OutC%c.OCBlock != 0 {
			t.Fatalf("candidate %v does not divide channels", c)
		}
		// Above the output width only the narrowest clamped value survives.
		if c.Algorithm == machine.AlgoDirect && c.RegN > testWL.OutW() && c.RegN != 16 {
			t.Fatalf("candidate %v duplicates the clamped full-width tile (ow=%d)", c, testWL.OutW())
		}
		if c.Algorithm == machine.AlgoWinograd {
			winograd++
		}
		k := c.String()
		if seen[k] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[k] = true
	}
	if winograd != 42*len(grainCandidates) {
		t.Fatalf("winograd candidates = %d, want one per block pair per grain (%d)", winograd, 42*len(grainCandidates))
	}
}

func TestCandidatesSkipOversizedRegN(t *testing.T) {
	// A 1-wide output admits no reg_n candidate; the narrowest one is kept
	// (the kernel clamps it), so the space never collapses to empty.
	wl := testWL
	wl.InH, wl.InW = 5, 3
	wl.PadH, wl.PadW = 0, 0
	if wl.OutW() != 1 {
		t.Fatalf("test setup: OutW = %d, want 1", wl.OutW())
	}
	cands := Candidates(wl, machine.IntelSkylakeC5())
	if len(cands) == 0 {
		t.Fatal("no candidates for 1-wide output")
	}
	for _, c := range cands {
		if c.Algorithm == machine.AlgoDirect && c.RegN != 2 {
			t.Fatalf("candidate %v: want only the narrowest reg_n for a 1-wide output", c)
		}
	}
}

func TestCandidatesGateWinograd(t *testing.T) {
	// Strided and non-3x3 workloads must not receive winograd candidates.
	for _, wl := range []machine.ConvWorkload{
		{InC: 32, InH: 14, InW: 14, OutC: 64, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{InC: 32, InH: 14, InW: 14, OutC: 64, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{InC: 32, InH: 14, InW: 14, OutC: 64, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
	} {
		for _, c := range Candidates(wl, machine.IntelSkylakeC5()) {
			if c.Algorithm == machine.AlgoWinograd {
				t.Fatalf("workload %v got winograd candidate %v", wl.Key(), c)
			}
		}
	}
}

func TestCandidatesCapBlocks(t *testing.T) {
	wl := testWL
	wl.InC, wl.OutC = 512, 2048
	for _, c := range Candidates(wl, machine.IntelSkylakeC5()) {
		if c.ICBlock > 64 || c.OCBlock > 64 {
			t.Fatalf("block factor above cap: %v", c)
		}
	}
}

func TestLocalSearchSortedAndSensible(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	results := LocalSearch(testWL, tgt, CostModelEvaluator(tgt))
	for i := 1; i < len(results); i++ {
		if results[i].Time < results[i-1].Time {
			t.Fatalf("results not ascending at %d", i)
		}
	}
	best := results[0].Sched
	// On AVX-512 the winning schedule must use full 16-lane vectors.
	if best.OCBlock%tgt.VectorLanes != 0 {
		t.Fatalf("best schedule %v does not fill vector lanes", best)
	}
	// On a 3x3 stride-1 workload with ample channels the 2.25x multiply
	// reduction should put a winograd scheme on top.
	if best.Algorithm != machine.AlgoWinograd {
		t.Fatalf("best schedule %v is not winograd on a 3x3 stride-1 workload", best)
	}
	// The best direct schedule must still hide FMA latency with enough
	// accumulators.
	for _, r := range results {
		if r.Sched.Algorithm != machine.AlgoDirect {
			continue
		}
		if r.Sched.RegN < tgt.FMALatency*tgt.FMAPerCycle/2 {
			t.Fatalf("best direct schedule %v has too few accumulators", r.Sched)
		}
		break
	}
}

func TestLocalSearchBeatsNaiveChoice(t *testing.T) {
	tgt := machine.ARMCortexA72()
	results := LocalSearch(testWL, tgt, CostModelEvaluator(tgt))
	best := results[0].Time
	worst := results[len(results)-1].Time
	if worst/best < 1.5 {
		t.Fatalf("search space too flat: best %v worst %v", best, worst)
	}
}

// TestSearchPicksCoarserGrainForThreads pins the joint block+grain search:
// under a multi-thread evaluator the winner must carry a grain above 1 —
// chunking strictly reduces the modeled dispatch overhead while the
// balance term stays intact — and every searched grain must come from the
// candidate set. The grain survives the schedule DB round trip like any
// other schedule field (TestDBSaveLoadRoundTrip compares whole Results).
func TestSearchPicksCoarserGrainForThreads(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	threaded := func(wl machine.ConvWorkload, s machine.ConvSchedule) float64 {
		return tgt.ConvTime(wl, s, 4, machine.BackendPool, 1)
	}
	// A 1x1 workload whose (oc-block, out-row) unit count is large and
	// divides evenly across 4 threads at coarser grains: chunking then
	// keeps the balance term at 1 while shrinking dispatched items, so the
	// modeled time strictly improves and the searcher must take it. (On
	// tiny unit counts — winograd tile rows, say — grain 1 legitimately
	// stays optimal; that case is covered by the sweep assertion below.)
	wl := machine.ConvWorkload{
		InC: 64, InH: 16, InW: 16, OutC: 128, KH: 1, KW: 1,
		StrideH: 1, StrideW: 1,
	}
	results := LocalSearch(wl, tgt, threaded)
	if best := results[0].Sched; best.Grain <= 1 {
		t.Fatalf("4-thread search settled on grain %d (schedule %v); chunked dispatch must win", best.Grain, best)
	}
	valid := map[int]bool{}
	for _, g := range grainCandidates {
		valid[g] = true
	}
	for _, r := range results {
		if !valid[r.Sched.Grain] {
			t.Fatalf("schedule %v carries grain outside the candidate set %v", r.Sched, grainCandidates)
		}
	}
	// Grain choice is a pure dispatch/balance trade: for any fixed block
	// pair and algorithm, the candidates must differ only in predicted
	// time, never be missing — the searcher sees every grain for every
	// scheme it considers.
	type key struct {
		ic, oc, regN int
		algo         machine.ConvAlgorithm
		unroll       bool
	}
	grainsPer := map[key]map[int]bool{}
	for _, r := range results {
		k := key{r.Sched.ICBlock, r.Sched.OCBlock, r.Sched.RegN, r.Sched.Algorithm, r.Sched.UnrollKer}
		if grainsPer[k] == nil {
			grainsPer[k] = map[int]bool{}
		}
		grainsPer[k][r.Sched.Grain] = true
	}
	for k, gs := range grainsPer {
		if len(gs) != len(grainCandidates) {
			t.Fatalf("scheme %+v searched grains %v, want all of %v", k, gs, grainCandidates)
		}
	}
}

func TestBestByBlockPair(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	results := LocalSearch(testWL, tgt, CostModelEvaluator(tgt))
	pairs := BestByBlockPair(results)
	// 6 ic divisors * 7 oc divisors = 42 pairs.
	if len(pairs) != 42 {
		t.Fatalf("pair count = %d, want 42", len(pairs))
	}
	// Must stay ascending and unique per pair.
	seen := map[[2]int]bool{}
	for i, r := range pairs {
		key := [2]int{r.Sched.ICBlock, r.Sched.OCBlock}
		if seen[key] {
			t.Fatalf("pair %v repeated", key)
		}
		seen[key] = true
		if i > 0 && pairs[i].Time < pairs[i-1].Time {
			t.Fatal("pairs not ascending")
		}
	}
	// The overall best must survive the reduction.
	if pairs[0].Time != results[0].Time {
		t.Fatal("best result lost in pair reduction")
	}
}

func TestDBMemoizes(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	db := NewDB()
	calls := 0
	eval := func(wl machine.ConvWorkload, s machine.ConvSchedule) float64 {
		calls++
		return CostModelEvaluator(tgt)(wl, s)
	}
	r1 := db.Search(tgt, testWL, eval)
	n := calls
	r2 := db.Search(tgt, testWL, eval)
	if calls != n {
		t.Fatal("second search must hit the memo")
	}
	if len(r1) != len(r2) || r1[0] != r2[0] {
		t.Fatal("memoized results differ")
	}
	if db.Len() != 1 {
		t.Fatalf("db len = %d", db.Len())
	}
	// Different target: separate entry.
	db.Search(machine.ARMCortexA72(), testWL, eval)
	if db.Len() != 2 {
		t.Fatalf("db len = %d, want 2", db.Len())
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	db := NewDB()
	db.Search(tgt, testWL, CostModelEvaluator(tgt))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	r1, _ := db.Lookup(tgt, testWL)
	r2, ok := db2.Lookup(tgt, testWL)
	if !ok || len(r1) != len(r2) {
		t.Fatal("round trip lost entries")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
	if err := db2.Load(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestMeasuredEvaluatorRuns(t *testing.T) {
	// A tiny workload measured for real: the blocked kernel must execute and
	// return a positive time.
	wl := machine.ConvWorkload{InC: 8, InH: 8, InW: 8, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	eval := MeasuredEvaluator(2)
	s := machine.ConvSchedule{ICBlock: 4, OCBlock: 4, RegN: 4, UnrollKer: true}
	got := eval(wl, s)
	if got <= 0 {
		t.Fatalf("measured time = %v", got)
	}
}

func TestDBConcurrentAccess(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	db := NewDB()
	eval := CostModelEvaluator(tgt)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			wl := testWL
			wl.OutC = 16 << (i % 3)
			db.Search(tgt, wl, eval)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if db.Len() != 3 {
		t.Fatalf("db len = %d, want 3", db.Len())
	}
}

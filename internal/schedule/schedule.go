// Package schedule implements the local optimization-scheme search of
// Section 3.3.1: enumerating candidate convolution schedules
// (ic_bn, oc_bn, reg_n, unroll_ker), evaluating them (against the machine
// cost model or by live measurement of the Go kernels), and memoizing the
// results in a per-target database keyed by convolution workload so repeated
// workloads across models are never searched twice.
package schedule

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Result is one evaluated schedule.
type Result struct {
	Sched machine.ConvSchedule
	// Time is the predicted or measured single-run execution time in
	// seconds.
	Time float64
}

// regNCandidates is the paper's reg_n candidate list (Section 3.3.1 step 2).
var regNCandidates = []int{32, 16, 8, 4, 2}

// grainCandidates is the parallel-grain candidate list: how many outermost
// work units one thread-pool item covers. 1 is the historical per-unit split;
// the larger grains let the cost model trade dispatch overhead against
// static-partitioning imbalance. The set is kept small because it multiplies
// the whole candidate space.
var grainCandidates = []int{1, 4, 16}

// withGrains expands each candidate schedule into one variant per parallel
// grain, making the grain a searched dimension of the scheme alongside the
// block sizes.
func withGrains(cands []machine.ConvSchedule) []machine.ConvSchedule {
	out := make([]machine.ConvSchedule, 0, len(cands)*len(grainCandidates))
	for _, s := range cands {
		for _, g := range grainCandidates {
			s.Grain = g
			out = append(out, s)
		}
	}
	return out
}

// divisors returns all positive divisors of n in descending order (the
// paper's step 1: "we include all factors of the number of channels").
func divisors(n int) []int {
	var d []int
	for i := n; i >= 1; i-- {
		if n%i == 0 {
			d = append(d, i)
		}
	}
	return d
}

// Candidates enumerates the search space for one workload on one target.
// Block factors are capped at 64 to keep the packed weight slab addressable;
// the paper's channel counts (3..2048) yield at most a few hundred
// combinations per workload ("the number of pairs is bound to 100").
//
// Two refinements over the plain cross product:
//
//   - reg_n values wider than the output width all clamp to the same
//     single full-width tile in the kernel, so only the narrowest such
//     value is kept (it covers out_width in one tile — a genuinely
//     distinct schedule from any reg_n <= out_width); the wider ones are
//     duplicates of it and only waste search time.
//   - for 3x3 stride-1 workloads, each block pair additionally gets one
//     Winograd candidate (the algorithm is a searched dimension of the
//     scheme; the Winograd kernel has no reg_n/unroll knobs).
//
// Grouped convolutions restrict the block domains so channel blocks never
// straddle a group: ic_bn ranges over divisors of in_channels/groups and
// oc_bn over divisors of out_channels/groups. Depthwise convolutions further
// tie the pair — output lane v of a channel block reads input lane v of the
// same block, so ic_bn must equal oc_bn — and never get Winograd candidates.
func Candidates(wl machine.ConvWorkload, t *machine.Target) []machine.ConvSchedule {
	ow := wl.OutW()
	regNs := make([]int, 0, len(regNCandidates))
	clamped := 0
	for _, rn := range regNCandidates { // descending
		if rn <= ow {
			regNs = append(regNs, rn)
		} else {
			clamped = rn // ends at the narrowest candidate above ow
		}
	}
	if clamped != 0 {
		regNs = append(regNs, clamped)
	}
	if wl.Depthwise() {
		var out []machine.ConvSchedule
		for _, bn := range divisors(wl.InC) {
			if bn > 64 {
				continue
			}
			for _, rn := range regNs {
				for _, unroll := range []bool{true, false} {
					out = append(out, machine.ConvSchedule{
						Layout:  tensor.NCHWc(bn),
						ICBlock: bn, OCBlock: bn,
						RegN: rn, UnrollKer: unroll,
					})
				}
			}
		}
		return withGrains(out)
	}
	winograd := wl.WinogradViable()
	var out []machine.ConvSchedule
	for _, ic := range divisors(wl.InC / wl.GroupCount()) {
		if ic > 64 {
			continue
		}
		for _, oc := range divisors(wl.OutC / wl.GroupCount()) {
			if oc > 64 {
				continue
			}
			for _, rn := range regNs {
				for _, unroll := range []bool{true, false} {
					out = append(out, machine.ConvSchedule{
						Layout:  tensor.NCHWc(ic),
						ICBlock: ic, OCBlock: oc,
						RegN: rn, UnrollKer: unroll,
					})
				}
			}
			if winograd {
				out = append(out, machine.ConvSchedule{
					Layout:  tensor.NCHWc(ic),
					ICBlock: ic, OCBlock: oc,
					RegN:      1,
					Algorithm: machine.AlgoWinograd,
				})
			}
		}
	}
	return withGrains(out)
}

// Evaluator scores one schedule for one workload, returning seconds.
type Evaluator func(wl machine.ConvWorkload, s machine.ConvSchedule) float64

// CostModelEvaluator predicts single-thread execution time with the machine
// model. This is the default evaluator: it is deterministic and fast enough
// to exhaust the space for every convolution of every model.
func CostModelEvaluator(t *machine.Target) Evaluator {
	return func(wl machine.ConvWorkload, s machine.ConvSchedule) float64 {
		return t.ConvTime(wl, s, 1, machine.BackendSerial, 1)
	}
}

// MeasuredEvaluator times the real Go kernel. Each evaluation runs `trials`
// times and keeps the minimum, mirroring the paper's repeated-measurement
// averaging to cancel OS interference. It is used by the autotune example
// and by the validation tests; exhaustive measured search over full models
// is as slow in Go as the paper's 6-hour Skylake search was in TVM.
func MeasuredEvaluator(trials int) Evaluator {
	if trials < 1 {
		trials = 1
	}
	return func(wl machine.ConvWorkload, s machine.ConvSchedule) float64 {
		in := tensor.New(tensor.NCHW(), 1, wl.InC, wl.InH, wl.InW)
		in.FillRandom(1, 1)
		wt := tensor.New(tensor.OIHW(), wl.OutC, wl.InC/wl.GroupCount(), wl.KH, wl.KW)
		wt.FillRandom(2, 1)
		attrs := ops.Conv2DAttrs{
			OutC: wl.OutC, KH: wl.KH, KW: wl.KW,
			StrideH: wl.StrideH, StrideW: wl.StrideW, PadH: wl.PadH, PadW: wl.PadW,
			Groups: wl.Groups,
		}
		blockedIn := tensor.ToNCHWc(in, s.ICBlock)
		run := func() {}
		switch {
		case s.Algorithm == machine.AlgoWinograd:
			u := ops.WinogradWeightTransformNCHWc(wt, s.ICBlock, s.OCBlock)
			run = func() {
				ops.Conv2DWinogradNCHWc(blockedIn, u, attrs, s.ICBlock, s.OCBlock, ops.Epilogue{}, nil)
			}
		case wl.Depthwise():
			packed := tensor.PackWeights(wt, 1, s.OCBlock)
			run = func() {
				ops.Conv2DDepthwiseNCHWc(blockedIn, packed, attrs, s.OCBlock, s.RegN, s.UnrollKer, ops.Epilogue{}, nil)
			}
		default:
			blockedWt := tensor.PackWeights(wt, s.ICBlock, s.OCBlock)
			run = func() {
				ops.Conv2DNCHWc(blockedIn, blockedWt, attrs, s.ICBlock, s.OCBlock, s.RegN, s.UnrollKer, ops.Epilogue{}, nil)
			}
		}
		best := 0.0
		for i := 0; i < trials; i++ {
			start := time.Now()
			run()
			el := time.Since(start).Seconds()
			if i == 0 || el < best {
				best = el
			}
		}
		return best
	}
}

// LocalSearch walks the whole candidate space for a workload and returns
// results in ascending execution-time order (Section 3.3.1 step 4).
func LocalSearch(wl machine.ConvWorkload, t *machine.Target, eval Evaluator) []Result {
	cands := Candidates(wl, t)
	results := make([]Result, 0, len(cands))
	for _, s := range cands {
		results = append(results, Result{Sched: s, Time: eval(wl, s)})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Time < results[j].Time })
	return results
}

// BestByBlockPair reduces a sorted result list to the best result for each
// (ic_bn, oc_bn) pair. These pairs are the candidate schemes the global
// search chooses between (Section 3.3.2: "each CONV has a number of
// candidate schemes specified by different (ic_bn and oc_bn) pairs").
func BestByBlockPair(results []Result) []Result {
	seen := map[[2]int]bool{}
	var out []Result
	for _, r := range results {
		key := [2]int{r.Sched.ICBlock, r.Sched.OCBlock}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out
}

// DB memoizes local-search results per (target, workload). It is safe for
// concurrent use.
type DB struct {
	mu      sync.Mutex
	entries map[string][]Result
}

// NewDB creates an empty schedule database.
func NewDB() *DB { return &DB{entries: map[string][]Result{}} }

func dbKey(t *machine.Target, wl machine.ConvWorkload) string {
	return t.Name + "/" + wl.Key()
}

// Lookup returns the memoized results for a workload, if present.
func (db *DB) Lookup(t *machine.Target, wl machine.ConvWorkload) ([]Result, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.entries[dbKey(t, wl)]
	return r, ok
}

// Search returns the sorted local-search results for the workload, running
// the search on a miss and memoizing it.
func (db *DB) Search(t *machine.Target, wl machine.ConvWorkload, eval Evaluator) []Result {
	key := dbKey(t, wl)
	db.mu.Lock()
	if r, ok := db.entries[key]; ok {
		db.mu.Unlock()
		return r
	}
	db.mu.Unlock()
	// Search outside the lock: evaluations may be slow (measured mode).
	r := LocalSearch(wl, t, eval)
	db.mu.Lock()
	db.entries[key] = r
	db.mu.Unlock()
	return r
}

// Len returns the number of memoized workloads.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.entries)
}

// dbJSON is the serialized form.
type dbJSON struct {
	Entries map[string][]resultJSON `json:"entries"`
}

type resultJSON struct {
	ICBlock   int     `json:"ic_bn"`
	OCBlock   int     `json:"oc_bn"`
	RegN      int     `json:"reg_n"`
	UnrollKer bool    `json:"unroll_ker"`
	LayoutX   int     `json:"layout_block"`
	Algorithm string  `json:"algorithm,omitempty"` // "winograd"; absent means direct
	Grain     int     `json:"grain,omitempty"`     // parallel chunk size; absent means 1
	Time      float64 `json:"time"`
}

// Save writes the database as JSON (the paper: "we can maintain a database
// to store the results for every convolution workload on every CPU type").
func (db *DB) Save(w io.Writer) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := dbJSON{Entries: map[string][]resultJSON{}}
	for k, rs := range db.entries {
		js := make([]resultJSON, len(rs))
		for i, r := range rs {
			js[i] = resultJSON{
				ICBlock: r.Sched.ICBlock, OCBlock: r.Sched.OCBlock,
				RegN: r.Sched.RegN, UnrollKer: r.Sched.UnrollKer,
				LayoutX: r.Sched.Layout.BlockC, Grain: r.Sched.Grain, Time: r.Time,
			}
			if r.Sched.Algorithm == machine.AlgoWinograd {
				js[i].Algorithm = machine.AlgoWinograd.String()
			}
		}
		out.Entries[k] = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load replaces the database contents from JSON.
func (db *DB) Load(r io.Reader) error {
	var in dbJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("schedule: load db: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries = map[string][]Result{}
	for k, js := range in.Entries {
		rs := make([]Result, len(js))
		for i, j := range js {
			algo := machine.AlgoDirect
			if j.Algorithm == machine.AlgoWinograd.String() {
				algo = machine.AlgoWinograd
			}
			rs[i] = Result{
				Sched: machine.ConvSchedule{
					Layout:  tensor.NCHWc(j.LayoutX),
					ICBlock: j.ICBlock, OCBlock: j.OCBlock,
					RegN: j.RegN, UnrollKer: j.UnrollKer,
					Algorithm: algo, Grain: j.Grain,
				},
				Time: j.Time,
			}
		}
		db.entries[k] = rs
	}
	return nil
}

package schedule

import (
	"testing"

	"repro/internal/machine"
)

// TestCandidatesDepthwise pins the depthwise candidate domain: one shared
// channel block on both sides, no winograd, every block a divisor of the
// channel count.
func TestCandidatesDepthwise(t *testing.T) {
	wl := machine.ConvWorkload{
		InC: 32, InH: 14, InW: 14, OutC: 32, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 32,
	}
	tgt := machine.IntelSkylakeC5()
	cands := Candidates(wl, tgt)
	if len(cands) == 0 {
		t.Fatal("no depthwise candidates")
	}
	for _, s := range cands {
		if s.ICBlock != s.OCBlock {
			t.Fatalf("depthwise candidate with split blocks: %v", s)
		}
		if wl.InC%s.ICBlock != 0 {
			t.Fatalf("block %d does not divide channels %d", s.ICBlock, wl.InC)
		}
		if s.Algorithm == machine.AlgoWinograd {
			t.Fatalf("winograd candidate on a depthwise workload: %v", s)
		}
	}
}

// TestCandidatesGrouped pins the grouped candidate domain: blocks range over
// per-group divisors only, and the 3x3 stride-1 geometry still gets no
// winograd candidates once grouped.
func TestCandidatesGrouped(t *testing.T) {
	wl := machine.ConvWorkload{
		InC: 32, InH: 14, InW: 14, OutC: 64, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 4,
	}
	tgt := machine.IntelSkylakeC5()
	for _, s := range Candidates(wl, tgt) {
		if (wl.InC/4)%s.ICBlock != 0 || (wl.OutC/4)%s.OCBlock != 0 {
			t.Fatalf("candidate blocks (%d,%d) straddle groups (per-group %d,%d)", s.ICBlock, s.OCBlock, wl.InC/4, wl.OutC/4)
		}
		if s.Algorithm == machine.AlgoWinograd {
			t.Fatalf("winograd candidate on a grouped workload: %v", s)
		}
	}
	// The dense version of the same geometry does get winograd candidates, so
	// the absence above is the groups gate, not the geometry.
	dense := wl
	dense.Groups = 0
	hasWino := false
	for _, s := range Candidates(dense, tgt) {
		if s.Algorithm == machine.AlgoWinograd {
			hasWino = true
		}
	}
	if !hasWino {
		t.Fatal("dense 3x3 stride-1 control lost its winograd candidates")
	}
}

// TestLocalSearchDepthwise runs the cost-model local search over a depthwise
// workload end to end: it must rank some full-vector-lane schedule first.
func TestLocalSearchDepthwise(t *testing.T) {
	wl := machine.ConvWorkload{
		InC: 64, InH: 28, InW: 28, OutC: 64, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 64,
	}
	tgt := machine.IntelSkylakeC5()
	results := LocalSearch(wl, tgt, CostModelEvaluator(tgt))
	if len(results) == 0 {
		t.Fatal("empty depthwise search")
	}
	best := results[0].Sched
	if best.OCBlock%tgt.VectorLanes != 0 {
		t.Fatalf("best depthwise schedule %v does not fill the %d vector lanes", best, tgt.VectorLanes)
	}
	if results[0].Time <= 0 {
		t.Fatalf("non-positive predicted time %g", results[0].Time)
	}
}
